"""Real-world application analogs (paper Sec IV-E, Fig 19).

Five workloads mirroring the paper's set: *memcached* (a network
key-value server driven through the NIC model), *sqlite* (a row store
with a sorted index and binary-search lookups), *fileIO* (block-device
read/write sweeps), *untar* (archive extraction from a disk image) and
*cpu-prime* (a sieve).  The I/O-bound ones spend most of their modelled
time in device costs (:mod:`repro.common.costmodel`), which is what caps
their speedup in Fig 19 exactly as in the paper.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from .spec import Workload

# ---------------------------------------------------------------------------
# memcached: binary protocol over the NIC.  Request: [op, key, lo, hi]
# (op 'S' = set key to the 16-bit value, 'G' = get).  Response: one byte
# status + one byte value-low for GETs.
# ---------------------------------------------------------------------------


def _memcached_packets(count: int = 80) -> List[bytes]:
    packets = []
    state = 12345
    for index in range(count):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        key = state & 0x3F
        if index % 3 != 2:
            value = (state >> 8) & 0xFFFF
            packets.append(bytes([ord("S"), key, value & 0xFF,
                                  (value >> 8) & 0xFF]))
        else:
            packets.append(bytes([ord("G"), key, 0, 0]))
    return packets


MEMCACHED = Workload("memcached", category="realworld",
                     nic_packets=_memcached_packets(), body=r"""
main:
    ldr r4, =USER_HEAP          @ value table: 64 words
serve:
    bl unrxlen
    cmp r0, #0
    beq shutdown
    bl unrxbyte                 @ op
    mov r8, r0
    bl unrxbyte                 @ key
    mov r9, r0
    bl unrxbyte                 @ value low
    mov r10, r0
    bl unrxbyte                 @ value high
    orr r10, r10, r0, lsl #8
    bl unrxdone
    cmp r8, #'S'
    bne handle_get
    @ SET: hash-bucket store with a tiny "LRU" counter in the upper bits
    str r10, [r4, r9, lsl #2]
    mov r0, #'O'
    bl untxbyte
    bl untxsend
    b serve
handle_get:
    ldr r0, [r4, r9, lsl #2]
    and r1, r0, #0xFF
    mov r0, #'V'
    bl untxbyte
    mov r0, r1
    bl untxbyte
    bl untxsend
    b serve
shutdown:
    @ checksum the table so the work is observable
    mov r0, #0
    mov r1, #0
sumtab:
    ldr r2, [r4, r1, lsl #2]
    add r0, r0, r2
    add r1, r1, #1
    cmp r1, #64
    blt sumtab
    bl updec
    mov r0, #0
    bl uexit
""")


# ---------------------------------------------------------------------------
# sqlite: insert rows into a heap file + sorted key index, then run
# binary-search lookups ("SELECT") and checksum the matches.
# ---------------------------------------------------------------------------

SQLITE = Workload("sqlite", category="realworld", body=r"""
main:
    ldr r4, =USER_HEAP          @ index: sorted (key, rowid) pairs
    ldr r5, =USER_HEAP + 0x4000 @ heap file: rows of 4 words
    ldr r8, =0x2545F            @ rng
    mov r9, #0                  @ row count
insert:
    @ next key
    eor r8, r8, r8, lsl #13
    eor r8, r8, r8, lsr #17
    eor r8, r8, r8, lsl #5
    bic r6, r8, #0xFF000000     @ key
    mov r6, r6, lsr #8
    @ append the row to the heap file
    add r0, r5, r9, lsl #4
    str r6, [r0]                @ key
    str r9, [r0, #4]            @ rowid
    eor r1, r6, r9
    str r1, [r0, #8]            @ payload
    add r1, r1, r6
    str r1, [r0, #12]
    @ insertion-sort the key into the index
    mov r1, r9                  @ slot
shift:
    cmp r1, #0
    beq place
    sub r2, r1, #1
    add r3, r4, r2, lsl #3
    ldr r0, [r3]                @ index[slot-1].key
    cmp r0, r6
    bls place
    ldr r12, [r3, #4]
    add r2, r4, r1, lsl #3
    str r0, [r2]
    str r12, [r2, #4]
    sub r1, r1, #1
    b shift
place:
    add r2, r4, r1, lsl #3
    str r6, [r2]
    str r9, [r2, #4]
    add r9, r9, #1
    cmp r9, #96
    blt insert

    @ SELECT phase: 256 binary-search probes
    ldr r8, =0x2545F
    mov r10, #0                 @ match checksum
    mov r11, #0                 @ query count
select:
    eor r8, r8, r8, lsl #13
    eor r8, r8, r8, lsr #17
    eor r8, r8, r8, lsl #5
    bic r6, r8, #0xFF000000
    mov r6, r6, lsr #8          @ probe key (hits for early queries)
    mov r0, #0                  @ lo
    mov r1, #96                 @ hi
bsearch:
    cmp r0, r1
    bge miss
    add r2, r0, r1
    mov r2, r2, lsr #1          @ mid
    add r3, r4, r2, lsl #3
    ldr r12, [r3]               @ index[mid].key
    cmp r12, r6
    beq hit
    addlo r0, r2, #1            @ key < probe: go right
    movhs r1, r2                @ key > probe: go left
    b bsearch
hit:
    ldr r0, [r3, #4]            @ rowid
    add r1, r5, r0, lsl #4
    ldr r2, [r1, #8]            @ payload
    add r10, r10, r2
    b nextq
miss:
    add r10, r10, #1
nextq:
    add r11, r11, #1
    ldr r0, =256
    cmp r11, r0
    blt select

    mov r0, r10
    bl updec
    mov r0, #0
    bl uexit
""")


# ---------------------------------------------------------------------------
# fileIO: write a pattern to 48 sectors through the block device, read it
# back, verify + checksum.  Dominated by modelled disk time.
# ---------------------------------------------------------------------------

FILEIO = Workload("fileio", category="realworld", body=r"""
main:
    ldr r4, =USER_HEAP          @ 512-byte DMA buffer
    @ fill the buffer once (fileIO benchmarks write a fixed pattern)
    mov r0, #0
wfill:
    eor r1, r0, r0, lsr #3
    and r1, r1, #0xFF
    strb r1, [r4, r0]
    add r0, r0, #1
    cmp r0, #512
    blt wfill
    mov r9, #0                  @ sector
wloop:
    str r9, [r4]                @ tag the sector in the first word
    mov r0, r9
    mov r1, r4
    bl ubwrite
    add r9, r9, #1
    cmp r9, #48
    blt wloop

    mov r9, #0
    mov r10, #0                 @ checksum
rloop:
    mov r0, r9
    mov r1, r4
    bl ubread
    mov r0, #0
rsum:
    ldrb r1, [r4, r0]
    add r10, r10, r1
    add r0, r0, #4              @ sample every 4th byte
    cmp r0, #512
    blt rsum
    add r9, r9, #1
    cmp r9, #48
    blt rloop

    mov r0, r10
    bl updec
    mov r0, #0
    bl uexit
""")


# ---------------------------------------------------------------------------
# untar: extract a simple archive (16-byte name, 4-byte size, data,
# 4-byte-aligned) from the disk image into memory.
# ---------------------------------------------------------------------------


def _make_archive() -> bytes:
    files = []
    state = 7
    for index in range(10):
        name = f"file{index:02d}.dat".encode().ljust(16, b"\0")
        size = 300 + index * 130
        data = bytearray()
        for _ in range(size):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            data.append(state & 0xFF)
        files.append(name + struct.pack("<I", size) + bytes(data) +
                     b"\0" * (-size % 4))
    blob = b"".join(files) + b"\0" * 16  # terminator: empty name
    return blob


UNTAR = Workload("untar", category="realworld", disk_image=_make_archive(),
                 body=r"""
main:
    ldr r4, =USER_HEAP          @ sector staging buffer (8 KiB window)
    ldr r5, =USER_HEAP + 0x8000 @ extraction area
    @ read the whole archive region (16 sectors) into memory first
    mov r9, #0
fetch:
    mov r0, r9
    add r1, r4, r9, lsl #9
    bl ubread
    add r9, r9, #1
    cmp r9, #16
    blt fetch

    mov r6, #0                  @ archive offset
    mov r10, #0                 @ checksum
    mov r11, #0                 @ files extracted
entry:
    ldrb r0, [r4, r6]           @ first byte of the name
    cmp r0, #0
    beq done                    @ empty name: end of archive
    @ checksum the name
    mov r1, #0
nameloop:
    add r2, r4, r6
    ldrb r3, [r2, r1]
    add r10, r10, r3
    add r1, r1, #1
    cmp r1, #16
    blt nameloop
    add r6, r6, #16
    @ size word
    ldr r8, [r4, r6]
    add r6, r6, #4
    @ copy data to the extraction area + checksum
    mov r1, #0
copy:
    ldrb r2, [r4, r6]
    strb r2, [r5, r1]
    add r10, r10, r2
    add r6, r6, #1
    add r1, r1, #1
    cmp r1, r8
    blt copy
    @ align to 4
    add r6, r6, #3
    bic r6, r6, #3
    add r5, r5, r8              @ bump extraction cursor
    add r11, r11, #1
    b entry
done:
    add r10, r10, r11, lsl #16
    mov r0, r10
    bl updec
    mov r0, #0
    bl uexit
""")


# ---------------------------------------------------------------------------
# cpu-prime: sieve of Eratosthenes (pure CPU; best speedup in Fig 19).
# ---------------------------------------------------------------------------

CPU_PRIME = Workload("cpu-prime", category="realworld", body=r"""
main:
    ldr r4, =USER_HEAP          @ sieve bytes
    ldr r5, =8192               @ limit
    mov r0, #0
clear:
    mov r1, #0
    strb r1, [r4, r0]
    add r0, r0, #1
    cmp r0, r5
    blt clear

    mov r6, #2                  @ candidate
sieve:
    ldrb r0, [r4, r6]
    cmp r0, #0
    bne composite
    @ mark multiples
    add r1, r6, r6
mark:
    cmp r1, r5
    bge composite
    mov r2, #1
    strb r2, [r4, r1]
    add r1, r1, r6
    b mark
composite:
    add r6, r6, #1
    cmp r6, r5
    blt sieve

    @ count primes
    mov r0, #0
    mov r1, #2
count:
    ldrb r2, [r4, r1]
    cmp r2, #0
    addeq r0, r0, #1
    add r1, r1, #1
    cmp r1, r5
    blt count
    bl updec                    @ pi(8192) = 1028
    mov r0, #0
    bl uexit
""")


REALWORLD_WORKLOADS: Dict[str, Workload] = {
    workload.name: workload for workload in (
        MEMCACHED, SQLITE, FILEIO, UNTAR, CPU_PRIME)
}
