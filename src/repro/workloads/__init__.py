"""Guest workloads: SPEC CINT/CFP analogs and real-world analogs."""

from .realworld import REALWORLD_WORKLOADS
from .spec import SPEC_WORKLOADS, Workload
from .specfp import SPECFP_WORKLOADS

ALL_WORKLOADS = {**SPEC_WORKLOADS, **SPECFP_WORKLOADS,
                 **REALWORLD_WORKLOADS}

__all__ = ["ALL_WORKLOADS", "REALWORLD_WORKLOADS", "SPECFP_WORKLOADS",
           "SPEC_WORKLOADS", "Workload"]
