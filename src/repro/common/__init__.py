"""Shared utilities: bit manipulation, errors, the cost model."""

from . import bitops, costmodel, errors  # noqa: F401

__all__ = ["bitops", "costmodel", "errors"]
