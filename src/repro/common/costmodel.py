"""Cost model for the performance metric.

The paper measures wall-clock time on a real Xeon.  This reproduction's
host is an interpreted x86 subset, so the performance metric is the
*dynamic host instruction count*: every host instruction the generated
code executes costs 1, and work performed inside C-level QEMU (helper
bodies, the translation loop, device models) is charged a modelled
instruction-equivalent cost.  The constants here are the entire model;
every experiment harness reports counts derived from them.

The values are calibrated to the figures the paper reports directly:
~20 host instructions per softmmu memory access (Sec IV-B), ~14 host
instructions per unoptimized coordination (Fig 8), and QEMU's ~17.39 host
instructions per guest instruction (Fig 15).
"""

from __future__ import annotations

# --- helper-function bodies (C code in real QEMU, Python here) -----------

# Crossing from generated code into a helper and back: argument marshalling,
# call/ret, register save/restore in the real ABI.
HELPER_CALL_OVERHEAD = 12

# Softmmu slow path: two-level short-descriptor page walk + TLB refill.
COST_PAGE_WALK = 60

# System-register moves (mcr/mrc/msr/mrs) emulated in a helper body.
COST_SYSREG_HELPER = 12

# One softfloat operation (unpack, align/normalize, round, repack) —
# QEMU emulates every VFP instruction with one of these.
COST_SOFTFLOAT = 60

# Delivering an exception/interrupt: mode switch, banked registers, vector.
COST_EXCEPTION_ENTRY = 60

# cpu_exec outer loop: TB lookup in the hash table, chaining bookkeeping.
COST_TB_LOOKUP = 40

# Translating one guest instruction (amortized; both engines pay it once
# per *static* instruction, so it washes out of steady-state comparisons
# but is reported separately by the harness).
COST_TRANSLATE_PER_INSN = 300

# Executing one guest instruction in the degradation ladder's interp
# tier (decode + dispatch + architectural bookkeeping on the host) —
# the cost of the last-resort tier, far above any translated code.
COST_INTERP_TIER_INSN = 30

# Parsing a packed FLAGS word into QEMU's four per-bit fields, performed
# lazily by a helper when QEMU genuinely needs the bits (Sec III-B).
COST_LAZY_FLAGS_PARSE = 14

# --- device model costs (host-instruction equivalents) -------------------

# MMIO access dispatched to a device model.
COST_MMIO_ACCESS = 30

# One block-device sector transfer: QEMU's IDE emulation plus host image
# file I/O per 512-byte sector (2014-era testbed).  The I/O-bound
# real-world workloads (fileIO, untar) spend most of their time here,
# which is what caps their speedup near the paper's ~1.08x.
COST_BLOCK_SECTOR_IO = 36000

# One byte through the UART model.
COST_UART_BYTE = 40

# One network packet through the NIC model (memcached analog).
COST_NET_PACKET = 9000
