"""IEEE-754 binary32 arithmetic on bit patterns.

All engines share these helpers, so floating-point results are
bit-identical everywhere (Python computes in float64 and the
pack-to-binary32 step applies the rounding).
"""

from __future__ import annotations

import math
import struct


def to_float(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def from_float(value: float) -> int:
    try:
        packed = struct.pack("<f", value)
    except OverflowError:
        packed = struct.pack("<f", math.inf if value > 0 else -math.inf)
    return struct.unpack("<I", packed)[0]


def f32_add(a: int, b: int) -> int:
    return from_float(to_float(a) + to_float(b))


def f32_sub(a: int, b: int) -> int:
    return from_float(to_float(a) - to_float(b))


def f32_mul(a: int, b: int) -> int:
    return from_float(to_float(a) * to_float(b))


def f32_compare(a: int, b: int) -> int:
    """ARM VCMP NZCV result (as the FPSCR[31:28] nibble).

    less: 1000, equal: 0110, greater: 0010, unordered: 0011.
    """
    x, y = to_float(a), to_float(b)
    if math.isnan(x) or math.isnan(y):
        return 0b0011
    if x < y:
        return 0b1000
    if x == y:
        return 0b0110
    return 0b0010
