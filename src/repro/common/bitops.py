"""Bit-manipulation helpers shared by the guest and host ISA models.

All arithmetic in the emulator is performed on Python integers and then
normalized to 32-bit two's-complement values with these helpers.  Keeping
the normalization in one place makes the ISA semantics auditable.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF
SIGN_BIT = 0x80000000


def u32(value: int) -> int:
    """Truncate *value* to an unsigned 32-bit integer."""
    return value & MASK32


def s32(value: int) -> int:
    """Interpret the low 32 bits of *value* as a signed integer."""
    value &= MASK32
    return value - 0x100000000 if value & SIGN_BIT else value


def bit(value: int, index: int) -> int:
    """Return bit *index* of *value* (0 or 1)."""
    return (value >> index) & 1


def bits(value: int, hi: int, lo: int) -> int:
    """Return the bit-field value[hi:lo] inclusive."""
    if hi < lo:
        raise ValueError(f"invalid bit range [{hi}:{lo}]")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def set_bits(value: int, hi: int, lo: int, field: int) -> int:
    """Return *value* with value[hi:lo] replaced by *field*."""
    width = hi - lo + 1
    mask = ((1 << width) - 1) << lo
    return (value & ~mask & MASK32) | ((field << lo) & mask)


def sign_extend(value: int, width: int) -> int:
    """Sign-extend a *width*-bit value to a Python int."""
    sign = 1 << (width - 1)
    return (value & (sign - 1)) - (value & sign)


def ror32(value: int, amount: int) -> int:
    """Rotate a 32-bit value right by *amount* (mod 32)."""
    amount &= 31
    value &= MASK32
    if amount == 0:
        return value
    return ((value >> amount) | (value << (32 - amount))) & MASK32


def align(value: int, alignment: int) -> int:
    """Round *value* down to a multiple of *alignment* (a power of two)."""
    return value & ~(alignment - 1) & MASK32


def is_aligned(value: int, alignment: int) -> bool:
    """True if *value* is a multiple of *alignment* (a power of two)."""
    return (value & (alignment - 1)) == 0


def popcount(value: int) -> int:
    """Number of set bits in *value*."""
    return bin(value & MASK32).count("1")


def encode_arm_imm(value: int):
    """Encode *value* as an ARM modified-immediate (rotated 8-bit) if possible.

    Returns ``(rotation, imm8)`` such that ``ror32(imm8, rotation * 2)``
    equals *value*, or ``None`` when the value is not encodable.
    """
    value = u32(value)
    for rotation in range(16):
        imm8 = ror32(value, 32 - rotation * 2) if rotation else value
        # Undo the rotation: left-rotating value by rotation*2 must fit 8 bits.
        candidate = ((value << (rotation * 2)) | (value >> (32 - rotation * 2))) & MASK32 if rotation else value
        if candidate <= 0xFF:
            return rotation, candidate
    return None


def decode_arm_imm(rotation: int, imm8: int) -> int:
    """Decode an ARM modified-immediate field back to its 32-bit value."""
    return ror32(imm8 & 0xFF, (rotation & 0xF) * 2)
