"""Exception hierarchy for the whole reproduction stack."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class AssemblerError(ReproError):
    """Raised for malformed guest assembly source."""

    def __init__(self, message: str, line: int = 0, source: str = ""):
        self.line = line
        self.source = source
        location = f" (line {line}: {source!r})" if line else ""
        super().__init__(message + location)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded to machine code."""


class DecodingError(ReproError):
    """Raised when a machine word does not decode to a known instruction."""

    def __init__(self, word: int, address: int = 0):
        self.word = word
        self.address = address
        super().__init__(f"cannot decode word 0x{word:08x} at 0x{address:08x}")


class GuestFault(ReproError):
    """Base class for synchronous guest CPU exceptions."""


class UndefinedInstruction(GuestFault):
    """Guest executed an instruction the CPU model does not implement."""


class MemoryFault(GuestFault):
    """A guest memory access failed address translation or permissions.

    Carries the faulting virtual address and whether it was a write so the
    guest kernel's abort handler (and the softmmu slow path) can act on it.
    """

    def __init__(self, vaddr: int, is_write: bool, reason: str = "translation"):
        self.vaddr = vaddr
        self.is_write = is_write
        self.reason = reason
        kind = "write" if is_write else "read"
        super().__init__(f"{reason} fault on {kind} at 0x{vaddr:08x}")


class BusError(ReproError):
    """A physical access hit an unmapped region of the machine's memory map."""

    def __init__(self, paddr: int):
        self.paddr = paddr
        super().__init__(f"bus error at physical address 0x{paddr:08x}")


class HostExecutionError(ReproError):
    """The host-code interpreter hit an invalid state (a codegen bug)."""


class TranslationError(ReproError):
    """The DBT failed to translate a guest basic block."""


class RuleVerificationError(ReproError):
    """Symbolic verification rejected a candidate translation rule."""


class GuestHalt(ReproError):
    """The guest OS requested shutdown (not an error; unwinds the run loop)."""

    def __init__(self, exit_code: int = 0):
        self.exit_code = exit_code
        super().__init__(f"guest halted with exit code {exit_code}")
