"""Exception hierarchy for the whole reproduction stack."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass
class DiagContext:
    """Machine-state snapshot attached to errors for actionable reports.

    Built by :meth:`repro.miniqemu.machine.Machine.diag_context` at raise
    time; every field is optional so partially-initialized machines can
    still attach what they know.  When tracing is enabled, ``trace``
    carries the last few probe events (the flight recorder) so
    robustness failures ship with the execution history that led there.
    """

    guest_pc: Optional[int] = None
    mode: Optional[int] = None
    icount: Optional[int] = None
    engine: Optional[str] = None
    extra: Dict[str, object] = field(default_factory=dict)
    trace: Tuple = ()

    def __str__(self) -> str:
        parts = []
        if self.guest_pc is not None:
            parts.append(f"pc=0x{self.guest_pc:08x}")
        if self.mode is not None:
            parts.append(f"mode=0x{self.mode:02x}")
        if self.icount is not None:
            parts.append(f"icount={self.icount}")
        if self.engine is not None:
            parts.append(f"engine={self.engine}")
        parts.extend(f"{key}={value}" for key, value in self.extra.items())
        if self.trace:
            parts.append(f"trace[{len(self.trace)}]="
                         + "; ".join(str(event) for event in self.trace))
        return " ".join(parts)


class ReproError(Exception):
    """Base class for every error raised by this library.

    Errors can carry an optional :class:`DiagContext` describing the
    machine state at raise time; :meth:`attach_context` is chainable so
    raise sites read ``raise Error(...).attach_context(ctx)``.
    """

    context: Optional[DiagContext] = None

    def attach_context(self, context: Optional[DiagContext]) -> "ReproError":
        if context is not None and self.context is None:
            self.context = context
        return self

    def __str__(self) -> str:
        base = super().__str__()
        if self.context is not None:
            return f"{base} [{self.context}]"
        return base


class AssemblerError(ReproError):
    """Raised for malformed guest assembly source."""

    def __init__(self, message: str, line: int = 0, source: str = ""):
        self.line = line
        self.source = source
        location = f" (line {line}: {source!r})" if line else ""
        super().__init__(message + location)


class EncodingError(ReproError):
    """Raised when an instruction cannot be encoded to machine code."""


class DecodingError(ReproError):
    """Raised when a machine word does not decode to a known instruction."""

    def __init__(self, word: int, address: int = 0):
        self.word = word
        self.address = address
        super().__init__(f"cannot decode word 0x{word:08x} at 0x{address:08x}")


class GuestFault(ReproError):
    """Base class for synchronous guest CPU exceptions."""


class UndefinedInstruction(GuestFault):
    """Guest executed an instruction the CPU model does not implement."""


class MemoryFault(GuestFault):
    """A guest memory access failed address translation or permissions.

    Carries the faulting virtual address and whether it was a write so the
    guest kernel's abort handler (and the softmmu slow path) can act on it.
    """

    def __init__(self, vaddr: int, is_write: bool, reason: str = "translation"):
        self.vaddr = vaddr
        self.is_write = is_write
        self.reason = reason
        kind = "write" if is_write else "read"
        super().__init__(f"{reason} fault on {kind} at 0x{vaddr:08x}")


class BusError(ReproError):
    """A physical access hit an unmapped region of the machine's memory map."""

    def __init__(self, paddr: int):
        self.paddr = paddr
        super().__init__(f"bus error at physical address 0x{paddr:08x}")


class HostExecutionError(ReproError):
    """The host-code interpreter hit an invalid state (a codegen bug)."""


class TranslationError(ReproError):
    """The DBT failed to translate a guest basic block."""


class RuleVerificationError(ReproError):
    """Symbolic verification rejected a candidate translation rule."""


class WatchdogTimeout(ReproError):
    """The execution watchdog stopped a runaway TB (bounded host insns).

    Structured and recoverable: the degradation ladder treats it like a
    codegen bug (quarantine / demote / retranslate).
    """

    def __init__(self, executed: int, limit: int, tb_pc: Optional[int] = None):
        self.executed = executed
        self.limit = limit
        self.tb_pc = tb_pc
        where = f" in TB 0x{tb_pc:08x}" if tb_pc is not None else ""
        super().__init__(
            f"watchdog: {executed} host instructions{where} "
            f"exceeded the per-execute bound of {limit}")


class WakeupDeadlock(ReproError):
    """A halted guest (wfi) has no wakeup source: a hang, made structured.

    Carries the timer and interrupt-controller state so the report shows
    *why* no interrupt can ever arrive.
    """

    def __init__(self, reason: str, timer_enabled: bool = False,
                 timer_reload: int = 0, timer_value: int = 0,
                 irq_line: bool = False, intc_pending: int = 0,
                 intc_enabled: int = 0):
        self.reason = reason
        self.timer_enabled = timer_enabled
        self.timer_reload = timer_reload
        self.timer_value = timer_value
        self.irq_line = irq_line
        self.intc_pending = intc_pending
        self.intc_enabled = intc_enabled
        super().__init__(
            f"wakeup deadlock: {reason} (timer enabled={timer_enabled} "
            f"reload={timer_reload} value={timer_value} irq_line={irq_line} "
            f"intc pending=0x{intc_pending:x} enabled=0x{intc_enabled:x})")


class InjectedFault(ReproError):
    """A fault-injection point fired (transient, retried by the engine)."""

    def __init__(self, site: str, detail: str = ""):
        self.site = site
        self.detail = detail
        suffix = f": {detail}" if detail else ""
        super().__init__(f"injected fault at {site!r}{suffix}")


class RuleApplicationError(ReproError):
    """A learned translation rule misbehaved (translate- or execute-time).

    Carries the rule key so the engine can quarantine exactly the
    offending rule and retranslate without it.
    """

    def __init__(self, rule: str, phase: str = "execute", detail: str = ""):
        self.rule = rule
        self.phase = phase
        self.detail = detail
        suffix = f": {detail}" if detail else ""
        super().__init__(f"rule {rule!r} failed during {phase}{suffix}")


class GuestHalt(ReproError):
    """The guest OS requested shutdown (not an error; unwinds the run loop)."""

    def __init__(self, exit_code: int = 0):
        self.exit_code = exit_code
        super().__init__(f"guest halted with exit code {exit_code}")
