"""Execution watchdog, halt fast-forward, and machine-state snapshots.

Three hang classes are converted into structured, recoverable errors:

- **runaway TBs**: :class:`ExecutionWatchdog` bounds host instructions
  per :meth:`HostInterpreter.execute` call; tripping raises
  :class:`~repro.common.errors.WatchdogTimeout` with a machine-state
  snapshot attached (the degradation ladder then treats the TB like any
  other codegen bug);
- **wakeup deadlocks**: :func:`fast_forward_halt` is the single shared
  halt fast-forward (both the interpreter engine and the DBT engines
  call it) and raises :class:`~repro.common.errors.WakeupDeadlock` with
  the timer/interrupt-controller state when a halted guest can never
  wake;
- **unsafe recovery**: :class:`MachineSnapshot` captures the
  architectural state (env bytes, guest CPU, time, timer/intc) before a
  TB executes so the engine can roll back and replay after a fault that
  surfaced before any non-idempotent (MMIO/exception) side effect.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..common.errors import WakeupDeadlock

#: Default per-execute() host-instruction bound (matches the legacy
#: hard-coded runaway limit in the host interpreter).
DEFAULT_MAX_HOST_INSNS = 5_000_000

#: Halt fast-forward iterations before declaring a wakeup deadlock.  Each
#: iteration advances guest time by at least one timer period, so any
#: functioning wakeup source fires on the first few iterations.
MAX_HALT_ITERATIONS = 1_000_000


class ExecutionWatchdog:
    """Bounds on host work per engine step, shared by all engines."""

    def __init__(self, max_host_insns: int = DEFAULT_MAX_HOST_INSNS,
                 max_halt_iterations: int = MAX_HALT_ITERATIONS):
        self.max_host_insns = max_host_insns
        self.max_halt_iterations = max_halt_iterations
        self.trips = 0


def fast_forward_halt(machine, awake: Callable[[], bool]) -> None:
    """Advance guest time until *awake()* — the one shared wfi skipper.

    Raises :class:`WakeupDeadlock` (with timer/IRQ state and machine
    diagnostics) instead of a bare ``ReproError`` when no wakeup source
    exists or the wait cannot terminate.
    """
    timer = machine.timer
    watchdog = getattr(machine, "watchdog", None)
    limit = watchdog.max_halt_iterations if watchdog is not None \
        else MAX_HALT_ITERATIONS

    def deadlock(reason: str) -> WakeupDeadlock:
        error = WakeupDeadlock(
            reason, timer_enabled=timer.enabled, timer_reload=timer.reload,
            timer_value=timer.value, irq_line=machine.cpu.irq_line,
            intc_pending=machine.intc.pending,
            intc_enabled=machine.intc.enabled)
        return error.attach_context(machine.diag_context(phase="wfi"))

    if not timer.enabled or timer.reload == 0:
        raise deadlock("guest halted with no wakeup source (wfi)")
    iterations = 0
    while not awake():
        machine.advance_time(max(timer.value, 1))
        iterations += 1
        if not machine.cpu.irq_line and not timer.enabled:
            raise deadlock("halted guest cannot wake up (timer disabled "
                           "while waiting)")
        if iterations > limit:
            raise deadlock(f"halted guest did not wake within {limit} "
                           f"timer periods")


class MachineSnapshot:
    """Copy of the rollback-relevant machine state at a TB boundary.

    Host RAM is deliberately *not* copied: replayed computation is
    deterministic, so RAM stores replay idempotently given the restored
    env/CPU state.  Recovery is therefore only attempted when the
    partial execution performed no non-idempotent work (MMIO, exception
    delivery) — the host interpreter tracks that per execute() call.
    """

    __slots__ = ("env_data", "cpu_state", "guest_icount", "io_cost",
                 "irq_delivered", "timer_state", "intc_state")

    def __init__(self, machine):
        self.env_data = bytes(machine.env.data)
        self.cpu_state = _save_cpu(machine.cpu)
        self.guest_icount = machine.guest_icount
        self.io_cost = machine.io_cost
        self.irq_delivered = machine.irq_delivered
        timer = machine.timer
        self.timer_state = (timer.reload, timer.value, timer.enabled,
                            timer.ticks)
        self.intc_state = (machine.intc.pending, machine.intc.enabled)

    def restore(self, machine) -> None:
        machine.env.data[:] = self.env_data
        _restore_cpu(machine.cpu, self.cpu_state)
        machine.guest_icount = self.guest_icount
        machine.io_cost = self.io_cost
        machine.irq_delivered = self.irq_delivered
        timer = machine.timer
        (timer.reload, timer.value, timer.enabled, timer.ticks) = \
            self.timer_state
        machine.intc.pending, machine.intc.enabled = self.intc_state


def _save_cpu(cpu) -> Tuple:
    return (list(cpu.regs), cpu.cpsr, dict(cpu._banked_sp_lr),
            dict(cpu._spsr), cpu.halted, cpu.irq_line, cpu.fpscr,
            list(cpu.vfp), _save_cp15(cpu.cp15))


def _restore_cpu(cpu, state) -> None:
    (regs, cpsr, banked, spsr, halted, irq_line, fpscr, vfp, cp15) = state
    cpu.regs[:] = regs
    cpu.cpsr = cpsr
    cpu._banked_sp_lr = dict(banked)
    cpu._spsr = dict(spsr)
    cpu.halted = halted
    cpu.irq_line = irq_line
    cpu.fpscr = fpscr
    cpu.vfp[:] = vfp
    _restore_cp15(cpu.cp15, cp15)


def _cp15_fields(cp15) -> List[str]:
    import dataclasses
    return [field.name for field in dataclasses.fields(cp15)]


def _save_cp15(cp15) -> Tuple:
    return tuple(getattr(cp15, name) for name in _cp15_fields(cp15))


def _restore_cp15(cp15, state) -> None:
    for name, value in zip(_cp15_fields(cp15), state):
        setattr(cp15, name, value)
