"""Robustness subsystem: fault injection, degradation, and watchdogs.

Three cooperating pieces (see ``docs/internals.md``):

- :mod:`repro.robustness.faultinject` — deterministic, seed-driven
  fault injector with named sites threaded through the softmmu,
  decoder, rule translator, helpers, and devices;
- :mod:`repro.robustness.degrade` — the tiered degradation ladder
  (rules -> tcg -> interp) with rule quarantine and the online
  differential self-check;
- :mod:`repro.robustness.guard` — the execution watchdog, the shared
  halt fast-forward, and rollback snapshots.
"""

from .degrade import (DegradationController, SelfCheck, TRANSIENT_RETRY_LIMIT,
                      tb_selfcheckable)
from .faultinject import (FaultInjector, FaultPlan, NullInjector,
                          parse_inject_spec)
from .guard import (ExecutionWatchdog, MachineSnapshot, fast_forward_halt)

__all__ = [
    "DegradationController", "ExecutionWatchdog", "FaultInjector",
    "FaultPlan", "MachineSnapshot", "NullInjector", "SelfCheck",
    "TRANSIENT_RETRY_LIMIT", "fast_forward_halt", "parse_inject_spec",
    "tb_selfcheckable",
]
