"""The tiered degradation ladder: rules -> tcg -> interp.

The paper's premise puts *automatically-learned* translation rules in
the hot path of a system-level DBT, so a single bad rule (or a codegen
bug, or an unmodelled corner case) must not kill the guest.  This module
holds the policy state the engine loop consults:

- :class:`DegradationController` — per-engine ladder state: which rules
  are quarantined, which guest blocks have been demoted to a lower
  translation tier, transient-fault retry budgets, and the recovery
  statistics surfaced through ``Machine.stats()``;
- :class:`SelfCheck` — the online differential self-check: before a
  sampled rules-tier TB executes, it is re-run in a *sandboxed* host
  interpreter against the reference ARM interpreter from the same
  pre-state; a mismatch quarantines the TB's rules and the block is
  retranslated down the ladder **before** the bad code ever touches the
  live machine state.

Tier names are ordered strongest-first; ``interp`` (per-block reference
interpretation) is the unconditional last resort.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Tuple

from ..common.bitops import u32
from ..guest.cpu import GuestCpu
from ..guest.interp import Interpreter, condition_passed
from ..guest.isa import PC
from ..host.cpu import HostCpu
from ..host.interp import HostInterpreter
from ..host.isa import (ENV_REG, FLAG_CF, FLAG_OF, FLAG_SF, FLAG_ZF,
                        X86Op)
from ..host.memory import HostMemory
from ..miniqemu.env import (ENV_BASE, ENV_CF, ENV_CPSR_REST, ENV_FPSCR,
                            ENV_NF, ENV_PACKED_FLAGS, ENV_PACKED_VALID,
                            ENV_VF, ENV_ZF, Env, STACK_BASE, STACK_SIZE,
                            TLB_BASE, env_vfp)
from ..miniqemu.tb import EXIT_PC_UPDATED
from .guard import ExecutionWatchdog

#: Consecutive transient (injected) faults tolerated on one guest block
#: before the fault is treated as persistent and propagated.
TRANSIENT_RETRY_LIMIT = 64

#: Host-instruction bound for sandboxed self-check execution.
SELFCHECK_HOST_BOUND = 200_000


class DegradationController:
    """Ladder state for one DBT engine (quarantine, demotions, retries)."""

    def __init__(self, tiers: Tuple[str, ...], quarantine=None):
        self.tiers = tiers
        self.quarantine = quarantine      # QuarantineFilter or None
        #: (pc, mmu_idx) -> lowest tier index this block may use.
        self.tier_floor: Dict[Tuple[int, int], int] = {}
        # Statistics.
        self.tier_counts: Dict[str, int] = {tier: 0 for tier in tiers}
        self.transient_faults = 0
        self.recovered_faults = 0
        self.demotions = 0
        self._consecutive_transients = 0

    # -- tier selection ----------------------------------------------------

    def start_tier(self, pc: int, mmu_idx: int) -> int:
        return self.tier_floor.get((pc, mmu_idx), 0)

    def note_translated(self, tier_index: int) -> None:
        self.tier_counts[self.tiers[tier_index]] += 1

    def demote(self, pc: int, mmu_idx: int) -> None:
        """Persistently lower the block's starting tier by one."""
        key = (pc, mmu_idx)
        floor = self.tier_floor.get(key, 0)
        if floor < len(self.tiers) - 1:
            self.tier_floor[key] = floor + 1
            self.demotions += 1

    # -- quarantine --------------------------------------------------------

    def quarantine_rule(self, rule: str, reason: str) -> bool:
        """Quarantine a rule key; returns True if newly quarantined."""
        if self.quarantine is None:
            return False
        return self.quarantine.quarantine(rule, reason)

    @property
    def quarantined_rules(self) -> Dict[str, str]:
        if self.quarantine is None:
            return {}
        return dict(self.quarantine.quarantined)

    # -- transient-fault retry budget --------------------------------------

    def note_transient(self) -> bool:
        """Record a transient fault; returns False when budget exhausted."""
        self.transient_faults += 1
        self._consecutive_transients += 1
        return self._consecutive_transients <= TRANSIENT_RETRY_LIMIT

    def note_progress(self) -> None:
        """An execute completed: reset the consecutive-transient counter."""
        self._consecutive_transients = 0

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        base = {
            "quarantined_rules": float(len(self.quarantined_rules)),
            "transient_faults": float(self.transient_faults),
            "recovered_faults": float(self.recovered_faults),
            "tier_demotions": float(self.demotions),
        }
        for tier, count in self.tier_counts.items():
            base[f"tier_{tier}_tbs"] = float(count)
        return base


# ---------------------------------------------------------------------------
# Online differential self-check.
# ---------------------------------------------------------------------------


class _SandboxRuntime:
    """Minimal runtime facade for injected helpers inside the sandbox."""

    def __init__(self, env: Env):
        self.env = env


class _NoBus:
    """Bus that rejects every access (pure blocks never touch it)."""

    def fetch(self, vaddr: int) -> int:
        raise RuntimeError("self-check reference touched the bus")

    def load(self, vaddr: int, size: int) -> int:
        raise RuntimeError("self-check reference touched the bus")

    def store(self, vaddr, size, value) -> None:
        raise RuntimeError("self-check reference touched the bus")

    def tlb_flush(self) -> None:
        pass


def tb_selfcheckable(tb) -> bool:
    """A TB is checkable when it is *pure*: no guest memory or system
    instructions and no (non-injected) helper calls, so both the
    sandboxed host run and the reference interpretation are closed over
    the env state alone."""
    meta = tb.meta
    if meta.get("n_memory", 1) or meta.get("n_system", 1):
        return False
    for insn in tb.code:
        if insn.op is X86Op.CALL_HELPER and \
                not getattr(insn.helper, "injected", False):
            return False
    return True


class SelfCheck:
    """Periodic differential re-execution of sampled rules-tier TBs.

    ``interval`` counts eligible TB executions between checks; an
    interval of 1 is *paranoid mode* — every eligible execution is
    checked first (the engine also disables block chaining so corrupted
    TBs cannot be entered behind the check's back).
    """

    def __init__(self, interval: int = 0, tlb_size: int = 0):
        self.interval = interval
        self.tlb_size = tlb_size
        self._countdown = interval
        # Statistics.
        self.checks = 0
        self.failures = 0
        self.inconclusive = 0

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    @property
    def paranoid(self) -> bool:
        return self.interval == 1

    def should_check(self, tb) -> bool:
        if not self.enabled or tb.meta.get("tier", "rules") != "rules":
            return False
        if not tb.meta.get("selfcheckable", False):
            return False
        self._countdown -= 1
        if self._countdown > 0:
            return False
        self._countdown = self.interval
        return True

    # -- the check itself --------------------------------------------------

    def verify(self, tb, env_prestate: bytes) -> bool:
        """Shadow-execute *tb* from *env_prestate*; True when it matches
        the reference interpreter (or the check is inconclusive)."""
        self.checks += 1
        sandbox_env, exit_ok = self._sandbox_execute(tb, env_prestate)
        if sandbox_env is None:
            self.failures += 1
            return False          # the TB crashed even in the sandbox
        if not exit_ok:
            self.inconclusive += 1
            return True           # interrupt exit: nothing to compare
        reference = self._reference_execute(tb, env_prestate)
        if reference is None:
            self.inconclusive += 1
            return True
        if self._matches(sandbox_env, reference):
            return True
        self.failures += 1
        return False

    def _sandbox_execute(self, tb, env_prestate: bytes):
        env = Env()
        env.data[:] = env_prestate
        memory = HostMemory()
        memory.map_region(ENV_BASE, env.data, "env")
        memory.map_region(STACK_BASE, bytearray(STACK_SIZE), "stack")
        if self.tlb_size:
            memory.map_region(TLB_BASE, bytearray(self.tlb_size), "tlb")
        cpu = HostCpu(stack_top=STACK_BASE + STACK_SIZE)
        cpu.regs[ENV_REG] = ENV_BASE
        host = HostInterpreter(cpu, memory)
        host.runtime = _SandboxRuntime(env)
        host.watchdog = ExecutionWatchdog(max_host_insns=SELFCHECK_HOST_BOUND)
        shadow = copy.copy(tb)
        shadow.jmp_target = [None, None]
        try:
            exit_info = host.execute(shadow)
        except Exception:
            return None, False
        return env, exit_info.status == EXIT_PC_UPDATED

    def _reference_execute(self, tb, env_prestate: bytes):
        env = Env()
        env.data[:] = env_prestate
        cpu = _cpu_from_env(env)
        interp = Interpreter(cpu, _NoBus())
        for insn in tb.guest_insns:
            if cpu.regs[PC] != insn.addr:
                break             # an earlier branch left the block
            if not condition_passed(insn.cond, cpu.cpsr):
                cpu.regs[PC] = u32(insn.addr + 4)
                continue
            try:
                interp._execute(insn)
            except Exception:
                return None       # reference cannot model it: inconclusive
        return cpu

    @staticmethod
    def _matches(env: Env, cpu: GuestCpu) -> bool:
        for index in range(16):
            if env.get_reg(index) != cpu.regs[index]:
                return False
        for index in range(32):
            if env.read(env_vfp(index)) != cpu.vfp[index]:
                return False
        return True


def _cpu_from_env(env: Env) -> GuestCpu:
    """Architectural CPU view of an env byte image (for the reference)."""
    cpu = GuestCpu()
    if env.read(ENV_PACKED_VALID):
        packed = env.read(ENV_PACKED_FLAGS)
        n = (packed >> FLAG_SF) & 1
        z = (packed >> FLAG_ZF) & 1
        c = (packed >> FLAG_CF) & 1
        v = (packed >> FLAG_OF) & 1
    else:
        n = env.read(ENV_NF) & 1
        z = env.read(ENV_ZF) & 1
        c = env.read(ENV_CF) & 1
        v = env.read(ENV_VF) & 1
    cpu.cpsr = (env.read(ENV_CPSR_REST) & 0x0FFFFFFF) | \
        (n << 31) | (z << 30) | (c << 29) | (v << 28)
    for index in range(16):
        cpu.regs[index] = env.get_reg(index)
    for index in range(32):
        cpu.vfp[index] = env.read(env_vfp(index))
    cpu.fpscr = env.read(ENV_FPSCR)
    return cpu
