"""Deterministic, seed-driven fault injection for the whole DBT stack.

Every injection point is *named* and consulted through one
:class:`FaultInjector` owned by the machine, so a run is reproducible
from ``(seed, plan)`` alone: each site draws from its own
:class:`random.Random` stream (keyed by seed and site name), which makes
firing patterns independent of how often *other* sites are consulted.

Injection sites threaded through the stack:

===============  ============================================  ==========
site             where it fires                                effect
===============  ============================================  ==========
``fetch``        translation-time guest fetch                  transient
                 (:meth:`DbtEngineBase.fetch_block`)           retry
``mem``          softmmu slow-path entry                       transient
                 (:meth:`QemuRuntime.memory_access`)           retry
``helper``       system/VFP helper entry                       rollback +
                 (:mod:`repro.miniqemu.helpers`)               replay
``irq-storm``    :meth:`Machine.advance_time` — spurious but   guest
                 *ackable* timer interrupts                    handles it
``rule-crash``   rule application at translate time            quarantine
                 (:meth:`RuleEngine.translate`)
``rule-corrupt`` post-translate TB instrumentation: a trap     quarantine
                 that models a crashing rule body              +invalidate
``rule-wrong``   post-translate TB instrumentation: a silent   self-check
                 wrong-result corruption of a pure TB          catches it
``drop-save``    post-translate TB instrumentation: delete a   checker
                 sync-save (and its audit event)               flags it
``forge-elide``  post-translate TB instrumentation: delete a   checker
                 sync-save and forge an elision justification  flags it
``extra-sync``   post-translate TB instrumentation: insert     perf gate
                 redundant sync-save instructions at TB entry  flags it
``cache-corrupt``  persistent-cache entry fetch: hand the      evict +
                 checksum validation a bit-flipped entry       fresh xlate
``cache-stale-bytes``  persistent-cache entry fetch: hand the  evict +
                 guest-byte validation non-matching words      fresh xlate
===============  ============================================  ==========

Rate sites (``fetch``/``mem``/``helper``/``irq-storm``/``rule-crash``)
fire probabilistically; the op-targeted sites (``rule-corrupt=OP``,
``rule-wrong=OP``) fire deterministically on every rules-tier TB that
applied the named rule, modelling a *persistently* bad learned rule.

The *analysis* sites (``drop-save``/``forge-elide``) are rate sites
consulted once per eligible rules-tier TB: they model a translator that
silently failed to coordinate (or lied about why coordination was
unnecessary).  The running guest may or may not notice; the static
soundness checker (``repro check`` / ``--check``) must.

The *performance* site (``extra-sync``) is the inverse: a rate site
that inserts behaviour-preserving but *redundant* coordination
instructions into rules-tier TBs, modelling a translator whose
sync-save optimizations (Sec III-B/C) silently stopped firing.  Neither
the guest nor the soundness checker can object — only the continuous
benchmarking gate (``repro bench --compare``) detects it, which makes
the gate's own detection path testable end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from ..common.errors import InjectedFault, ReproError, RuleApplicationError

#: Rate-style sites (value is a firing probability per consultation).
RATE_SITES = ("fetch", "mem", "helper", "irq-storm", "rule-crash")
#: Op-targeted sites (value is a guest Op name, e.g. ``EOR``).
OP_SITES = ("rule-corrupt", "rule-wrong")
#: Analysis-level sites (rate per eligible rules-tier TB): soundness
#: violations the static checker must detect.
ANALYSIS_SITES = ("drop-save", "forge-elide")
#: Performance-regression site (rate per rules-tier TB): sound but slow
#: code only the benchmark gate can flag.
PERF_SITES = ("extra-sync",)
#: Persistent-cache sites (rate per persisted-entry fetch): simulated
#: store corruption / staleness that the loader's validation must catch
#: (see repro.cache.loader) — the entry is evicted, never executed.
CACHE_SITES = ("cache-corrupt", "cache-stale-bytes")

#: Redundant sync instructions ``extra-sync`` inserts per fired TB —
#: two packed saves' worth (Fig 8: a packed save is ~3 instructions).
EXTRA_SYNC_INSNS = 6


@dataclass(frozen=True)
class FaultPlan:
    """What to inject: per-site rates plus targeted-rule corruption."""

    seed: int = 0
    rates: Dict[str, float] = field(default_factory=dict)
    corrupt_rules: FrozenSet[str] = frozenset()   # trap on application
    wrong_rules: FrozenSet[str] = frozenset()     # silent wrong result

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        parts += [f"{site}={rate}" for site, rate in sorted(self.rates.items())]
        parts += [f"rule-corrupt={op}" for op in sorted(self.corrupt_rules)]
        parts += [f"rule-wrong={op}" for op in sorted(self.wrong_rules)]
        return ",".join(parts)


def parse_inject_spec(spec: str) -> FaultPlan:
    """Parse a ``--inject`` spec like ``seed=7,mem=0.001,rule-corrupt=EOR``.

    Comma-separated ``key=value`` pairs; ``seed`` is an integer, rate
    sites take floats in [0, 1], and the op-targeted sites take a guest
    Op name (repeatable).
    """
    seed = 0
    rates: Dict[str, float] = {}
    corrupt = set()
    wrong = set()
    for item in filter(None, (part.strip() for part in spec.split(","))):
        if "=" not in item:
            raise ReproError(f"bad --inject item {item!r} (want key=value)")
        key, _, value = item.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "seed":
            seed = int(value, 0)
        elif key in RATE_SITES or key in ANALYSIS_SITES or \
                key in PERF_SITES or key in CACHE_SITES:
            rate = float(value)
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"--inject rate for {key!r} out of [0,1]: "
                                 f"{value}")
            rates[key] = rate
        elif key == "rule-corrupt":
            corrupt.add(value.upper())
        elif key == "rule-wrong":
            wrong.add(value.upper())
        else:
            known = ", ".join(RATE_SITES + ANALYSIS_SITES + PERF_SITES +
                              CACHE_SITES + OP_SITES + ("seed",))
            raise ReproError(f"unknown --inject site {key!r} (one of: "
                             f"{known})")
    return FaultPlan(seed=seed, rates=rates,
                     corrupt_rules=frozenset(corrupt),
                     wrong_rules=frozenset(wrong))


def _make_trap_helper(rule: str):
    """A helper that models a crashing rule body (raises immediately)."""

    def helper_injected_trap(runtime) -> None:
        raise RuleApplicationError(rule, phase="execute",
                                   detail="injected corruption trap")

    helper_injected_trap.__name__ = f"helper_trap_{rule.lower()}"
    helper_injected_trap.injected = True
    return helper_injected_trap


def _make_wrong_helper(rule: str, reg: int, mask: int):
    """A helper that silently corrupts a register (wrong-result rule)."""

    def helper_injected_wrong(runtime) -> None:
        env = runtime.env
        env.set_reg(reg, env.get_reg(reg) ^ mask)

    helper_injected_wrong.__name__ = f"helper_wrong_{rule.lower()}"
    helper_injected_wrong.injected = True
    return helper_injected_wrong


class NullInjector:
    """No-fault injector: every hot-path hook is a cheap no-op."""

    enabled = False
    plan: Optional[FaultPlan] = None

    def fires(self, site: str) -> bool:
        return False

    def maybe_fault(self, site: str, detail: str = "") -> None:
        return None

    def instrument_tb(self, tb) -> None:
        return None

    def counts_by_site(self) -> Dict[str, int]:
        return {}


class FaultInjector(NullInjector):
    """Deterministic injector driving every named fault site.

    Execute-time corruptions are applied as a *TB-entry* trap (the first
    host instruction of the corrupted TB raises), which exercises the
    same quarantine / invalidate / retranslate recovery path as a
    mid-block codegen crash while keeping replay safe: nothing has
    executed when the fault surfaces, so no guest side effects need to
    be unwound.
    """

    enabled = True

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.counts: Dict[str, int] = {}
        self._streams: Dict[str, random.Random] = {}

    # -- deterministic per-site randomness ---------------------------------

    def _stream(self, site: str) -> random.Random:
        stream = self._streams.get(site)
        if stream is None:
            stream = random.Random(f"{self.plan.seed}:{site}")
            self._streams[site] = stream
        return stream

    def _count(self, site: str) -> None:
        self.counts[site] = self.counts.get(site, 0) + 1

    # -- rate sites --------------------------------------------------------

    def fires(self, site: str) -> bool:
        rate = self.plan.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        if self._stream(site).random() < rate:
            self._count(site)
            return True
        return False

    def maybe_fault(self, site: str, detail: str = "") -> None:
        """Raise a transient :class:`InjectedFault` when the site fires."""
        if self.fires(site):
            raise InjectedFault(site, detail)

    # -- targeted rule corruption ------------------------------------------

    def rule_crash(self, rule: str) -> None:
        """Translate-time rule application crash (``rule-crash`` site)."""
        if self.fires("rule-crash"):
            raise RuleApplicationError(rule, phase="translate",
                                       detail="injected translator crash")

    def instrument_tb(self, tb) -> None:
        """Corrupt a freshly-translated rules-tier TB in place.

        Prepends an injected helper call (shifting every resolved
        intra-TB jump target by one slot):

        - ``rule-corrupt``: the helper raises, modelling a crash;
        - ``rule-wrong``: the helper silently flips a bit in r3, which
          only the online differential self-check can notice.
        """
        if not tb.code or tb.meta.get("tier", "rules") != "rules":
            return
        self._extra_sync(tb)
        used = tb.meta.get("rules_used") or ()
        hit = sorted(self.plan.corrupt_rules.intersection(used))
        if hit:
            self._count("rule-corrupt")
            self._prepend(tb, _make_trap_helper(hit[0]))
            tb.meta["injected"] = "rule-corrupt"
            return
        if self._corrupt_analysis(tb):
            return
        # Wrong-result corruption only targets *pure* (self-checkable)
        # TBs: the differential self-check is the detector under test,
        # and an undetectable silent corruption would just break the
        # workload with no recovery path to exercise.
        if not tb.meta.get("selfcheckable", False):
            return
        hit = sorted(self.plan.wrong_rules.intersection(used))
        if hit:
            self._count("rule-wrong")
            self._prepend(tb, _make_wrong_helper(hit[0], reg=3, mask=0x1000))
            tb.meta["injected"] = "rule-wrong"

    @staticmethod
    def _prepend(tb, helper) -> None:
        from ..analysis.justify import AUDIT_KEY, JUSTIFY_KEY, shift_indices
        from ..host.isa import X86Insn, X86Op

        for insn in tb.code:
            if insn.target_index >= 0:
                insn.target_index += 1
        # Keep the audit/justification bookkeeping aligned: the static
        # checker must see a well-formed (if doomed-at-runtime) TB, not
        # a bookkeeping mismatch.
        for key in (AUDIT_KEY, JUSTIFY_KEY):
            if tb.meta.get(key):
                tb.meta[key] = shift_indices(tb.meta[key], 0, 1)
        tb.code.insert(0, X86Insn(X86Op.CALL_HELPER, helper=helper,
                                  tag="injected"))

    # -- performance regression simulation ---------------------------------

    def _extra_sync(self, tb) -> None:
        """Insert redundant sync instructions at TB entry (``extra-sync``).

        The inserted instructions are architectural no-ops carrying the
        ``sync`` cost tag, and the TB's static ``sync_insns`` counter is
        bumped to match — so every Sec III coordination metric (the
        breakdown's ``coordination`` category, Fig 8's insns-per-sync,
        Fig 17's sync-per-guest) degrades exactly as if the translator
        had emitted pointless coordination, while guest behaviour and
        the soundness bookkeeping stay intact.
        """
        if not self.fires("extra-sync"):
            return
        from ..analysis.justify import AUDIT_KEY, JUSTIFY_KEY, shift_indices
        from ..host.isa import X86Insn, X86Op

        count = EXTRA_SYNC_INSNS
        for insn in tb.code:
            if insn.target_index >= 0:
                insn.target_index += count
        for key in (AUDIT_KEY, JUSTIFY_KEY):
            if tb.meta.get(key):
                tb.meta[key] = shift_indices(tb.meta[key], 0, count)
        for _ in range(count):
            tb.code.insert(0, X86Insn(X86Op.NOPSLOT, tag="sync"))
        tb.meta["sync_insns"] = tb.meta.get("sync_insns", 0) + count

    # -- analysis-level soundness corruption -------------------------------

    def _corrupt_analysis(self, tb) -> bool:
        """Apply at most one analysis-site corruption to *tb*.

        Both sites delete an emitted sync-save, modelling a translator
        that skipped coordination; ``forge-elide`` additionally plants a
        justification record claiming the skip was legal.  Only the
        static soundness checker can notice (the guest may happen to
        survive), so these TBs are *not* entry-trapped."""
        from ..analysis.justify import AUDIT_KEY, EV_SAVE

        saves = [event for event in (tb.meta.get(AUDIT_KEY) or ())
                 if event["kind"] == EV_SAVE]
        if not saves:
            return False
        for site in ("drop-save", "forge-elide"):
            if self.plan.rates.get(site, 0.0) <= 0.0 or \
                    not self.fires(site):
                continue
            event = saves[self._stream(site).randrange(len(saves))]
            if site == "drop-save":
                self._drop_save(tb, event)
            else:
                self._forge_elide(tb, event)
            tb.meta["injected"] = site
            return True
        return False

    def _drop_save(self, tb, event) -> None:
        """Delete a sync-save and its audit event (a translator that
        silently failed to coordinate)."""
        self._remove_range(tb, event)

    def _forge_elide(self, tb, event) -> None:
        """Delete a sync-save and forge the Sec III-C-2 claim that env
        already held a current copy (a lying elimination pass)."""
        from ..analysis.justify import JUSTIFY_KEY, elide_save_justification

        start = event["start"]
        mode = event.get("mode", "packed")
        self._remove_range(tb, event)
        records = list(tb.meta.get(JUSTIFY_KEY) or ())
        records.append(elide_save_justification(
            start, packed_ok=mode == "packed", parsed_ok=mode == "parsed"))
        tb.meta[JUSTIFY_KEY] = records

    @staticmethod
    def _remove_range(tb, event) -> None:
        """Remove the host instructions of one audit event, keeping the
        remaining bookkeeping (and intra-TB jumps) aligned."""
        from ..analysis.justify import AUDIT_KEY, JUSTIFY_KEY, shift_indices

        start, end = event["start"], event["end"]
        delta = end - start
        del tb.code[start:end]
        for insn in tb.code:
            if insn.target_index >= end:
                insn.target_index -= delta
            elif insn.target_index >= start:
                # Defensive: a jump into the removed range now lands on
                # the instruction that follows it.
                insn.target_index = start
        audit = [e for e in (tb.meta.get(AUDIT_KEY) or ()) if e is not event]
        # Shift from start+1 so ranges *ending* exactly at the removal
        # point keep their end; anything at or beyond the removed
        # range's end moves down.
        tb.meta[AUDIT_KEY] = shift_indices(audit, start + 1, -delta)
        records = list(tb.meta.get(JUSTIFY_KEY) or ())
        tb.meta[JUSTIFY_KEY] = shift_indices(records, start + 1, -delta)

    # -- reporting ---------------------------------------------------------

    def counts_by_site(self) -> Dict[str, int]:
        return dict(self.counts)
