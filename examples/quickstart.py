#!/usr/bin/env python3
"""Quickstart: boot the mini guest OS and run a program on every engine.

Builds the machine (guest CPU + softmmu + devices), loads the ARMv7
mini-kernel and a small user program, and executes it on:

- the reference ARM interpreter,
- MiniQEMU (the TCG-style baseline),
- the rule-based DBT at Base and at full optimization,

then prints each engine's console output and cost metrics.

Run:  python examples/quickstart.py
"""

from repro.core import OptLevel, make_rule_engine
from repro.harness import format_table
from repro.kernel.kernel import build_kernel, build_user_program
from repro.miniqemu.machine import Machine

PROGRAM = r"""
main:
    adr r0, banner
    mov r1, #33
    bl uputs
    @ compute sum of cubes 1..20 = 44100
    mov r4, #0
    mov r5, #1
loop:
    mul r6, r5, r5
    mul r6, r6, r5
    add r4, r4, r6
    add r5, r5, #1
    cmp r5, #20
    ble loop
    mov r0, r4
    bl updec
    mov r0, #0
    bl uexit
banner:
    .asciz "hello from the guest kernel!\n   "
"""


def run(engine: str, factory=None) -> dict:
    machine = Machine(engine=engine, rule_engine_factory=factory)
    machine.memory.load_program(build_kernel())
    machine.memory.load_program(build_user_program(PROGRAM))
    machine.cpu.regs[15] = 0  # reset vector
    machine.env.load_from_cpu(machine.cpu)
    exit_code = machine.run()
    stats = machine.stats()
    return {
        "output": machine.uart.text,
        "exit": exit_code,
        "guest_insns": machine.guest_icount,
        "host_cost": stats["engine.host_cost"],
        "per_guest": stats["engine.host_cost"] / machine.guest_icount,
    }


def main():
    results = {
        "interpreter": run("interp"),
        "MiniQEMU (TCG)": run("tcg"),
        "rules (Base)": run("rules",
                            make_rule_engine(OptLevel.BASE)),
        "rules (full opt)": run("rules",
                                make_rule_engine(OptLevel.FULL)),
    }
    reference = results["interpreter"]["output"]
    print("guest console output:")
    print("  " + reference.replace("\n", "\n  "))
    rows = []
    qemu_cost = results["MiniQEMU (TCG)"]["host_cost"]
    for name, result in results.items():
        assert result["output"] == reference, f"{name} diverged!"
        rows.append([
            name, result["guest_insns"], f"{result['host_cost']:.0f}",
            f"{result['per_guest']:.2f}",
            f"{qemu_cost / result['host_cost']:.2f}x"
            if name != "interpreter" else "--",
        ])
    print(format_table(
        ["Engine", "Guest insns", "Host cost", "Cost/guest",
         "Speedup vs QEMU"], rows))
    print("\nAll engines produced identical guest behaviour.")


if __name__ == "__main__":
    main()
