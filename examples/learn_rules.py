#!/usr/bin/env python3
"""Run the rule-learning pipeline end to end and use the learned rules.

Reproduces the paper's learning flow (Sec II-A) on the built-in corpus:

1. compile every training function with the toycc ARM and x86 back ends,
2. extract candidate rules by pairing instructions via debug line info,
3. formally verify each candidate by symbolic execution,
4. parameterize registers/immediates/opcodes into the final rule set,

then boots the system emulator with the *learned* rulebook driving the
rule-based DBT and reports its dynamic coverage on a real workload.

Run:  python examples/learn_rules.py
"""

from repro.core import OptLevel, make_rule_engine
from repro.harness.runner import make_machine
from repro.learning import learn
from repro.workloads.spec import SPEC_WORKLOADS


def main():
    print("=== learning translation rules from the corpus ===")
    result = learn()
    print(result.summary())
    if result.rejected:
        print("rejected candidates:")
        for reason in result.rejected:
            print("  -", reason)

    print("\n=== a sample of the learned, parameterized rules ===")
    for rule in sorted(result.rules, key=lambda r: -len(r.origins))[:10]:
        marker = " [opcode-class]" if rule.opcode_class else ""
        print(f"  ({len(rule.origins):2d} origins){marker}")
        print(f"     guest: {'; '.join(rule.guest_pattern)}")
        print(f"     host:  {'; '.join(rule.host_pattern)}")

    print("\n=== running mcf under the learned rulebook ===")
    workload = SPEC_WORKLOADS["mcf"]
    machine = make_machine(workload, "tcg")
    machine.run(workload.max_insns)
    qemu_cost = machine.stats()["engine.host_cost"]

    factory = make_rule_engine(OptLevel.FULL, rulebook=result.rulebook)
    from repro.miniqemu.machine import Machine
    from repro.kernel.kernel import build_kernel, build_user_program
    machine = Machine(engine="rules", rule_engine_factory=factory)
    machine.memory.load_program(build_kernel(
        timer_reload=workload.timer_reload))
    machine.memory.load_program(build_user_program(workload.body))
    machine.cpu.regs[15] = 0
    machine.env.load_from_cpu(machine.cpu)
    machine.run(workload.max_insns)
    assert machine.uart.text == workload.expected_output
    stats = machine.stats()

    covered = uncovered = 0
    for tb in machine.engine.cache.all_tbs():
        weight = tb.exec_count
        uncovered += weight * tb.meta.get("n_uncovered", 0)
        covered += weight * (tb.guest_insn_count -
                             tb.meta.get("n_uncovered", 0) -
                             tb.meta.get("n_system", 0))
    print(f"output verified: {machine.uart.text.strip()!r}")
    print(f"dynamic rule coverage: "
          f"{100 * covered / (covered + uncovered):.1f}% "
          f"({uncovered} uncovered instructions fell back to QEMU)")
    print(f"speedup over QEMU with learned rules only: "
          f"{qemu_cost / stats['engine.host_cost']:.2f}x")


if __name__ == "__main__":
    main()
