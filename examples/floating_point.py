#!/usr/bin/env python3
"""Floating point under the rule-based DBT (the paper's footnote 3).

Runs a SAXPY kernel on QEMU and on the rule engine and shows why FP
workloads speed up far more than integer ones: QEMU emulates every VFP
instruction through a softfloat helper, while the learned FP rules
lower to three scalar-SSE host instructions with no helper call and —
because SSE ops never touch the host FLAGS register — no CPU-state
coordination at all.

Run:  python examples/floating_point.py
"""

from repro.core import OptLevel
from repro.core.engine import RuleEngine
from repro.guest.asm import assemble
from repro.harness import format_table, run_workload
from repro.miniqemu.machine import Machine, TcgEngine
from repro.workloads.specfp import SPECFP_WORKLOADS


def show_block():
    block = """
    vldr s0, [r0]
    vldr s1, [r1]
    vmul.f32 s0, s0, s7
    vadd.f32 s1, s1, s0
    vstr s1, [r1]
    bx lr
"""
    machine = Machine(engine="tcg")
    machine.memory.load_program(assemble(block, base=0x40000))
    print("guest SAXPY inner block:")
    for line in block.strip().splitlines():
        print("   " + line.strip())

    tcg_tb = TcgEngine(machine).translate(0x40000, 0)
    helper_calls = [insn for insn in tcg_tb.code
                    if insn.op.value == "call"]
    print(f"\nQEMU translation: {len(tcg_tb.code)} host instructions, "
          f"{len(helper_calls)} helper calls "
          f"({', '.join(i.helper.__name__ for i in helper_calls)})")

    engine = RuleEngine(machine, level=OptLevel.FULL)
    tb = engine.translate(0x40000, 0)
    sse = [insn for insn in tb.code if insn.op.value.endswith("ss")]
    print(f"rule translation: {len(tb.code)} host instructions, "
          f"{len(sse)} SSE instructions, "
          f"{tb.meta['sync_insns']} sync instructions for the FP ops")


def main():
    show_block()
    print("\nend-to-end FP workload speedups (QEMU vs rules-full):")
    rows = []
    for name in sorted(SPECFP_WORKLOADS):
        workload = SPECFP_WORKLOADS[name]
        qemu = run_workload(workload, "tcg")
        rules = run_workload(workload, "rules-full")
        assert qemu.output == rules.output
        rows.append([name, f"{qemu.runtime:.0f}", f"{rules.runtime:.0f}",
                     f"{qemu.runtime / rules.runtime:.2f}x"])
    print(format_table(["Workload", "QEMU cost", "Rules cost", "Speedup"],
                       rows))
    print("\nThe paper's footnote 3: with FP applications included the "
          "average speedup\nrises from 1.36x to 1.92x — this is the "
          "mechanism behind it.")


if __name__ == "__main__":
    main()
