#!/usr/bin/env python3
"""Interrupt behaviour under the rule-based DBT.

Runs a compute loop under an aggressive timer on each engine and shows
that (a) interrupts are delivered identically everywhere, (b) the
paper's lazy condition-code protocol only *parses* the packed FLAGS
word when an interrupt actually needs the bits (Sec III-B / Fig 7).

Run:  python examples/interrupt_latency.py
"""

from repro.core import OptLevel, make_rule_engine
from repro.harness import format_table
from repro.kernel.kernel import build_kernel, build_user_program
from repro.miniqemu.machine import Machine

PROGRAM = r"""
main:
    ldr r4, =120000             @ spin while the timer fires repeatedly
spin:
    subs r4, r4, #1
    bne spin
    bl uticks                   @ read the tick count
    bl updec
    mov r0, #0
    bl uexit
"""

TIMER_RELOAD = 700


def run(engine, factory=None):
    machine = Machine(engine=engine, rule_engine_factory=factory)
    machine.memory.load_program(build_kernel(timer_reload=TIMER_RELOAD))
    machine.memory.load_program(build_user_program(PROGRAM))
    machine.cpu.regs[15] = 0
    machine.env.load_from_cpu(machine.cpu)
    machine.run()
    stats = machine.stats()
    return {
        "ticks": machine.uart.text.strip(),
        "delivered": machine.irq_delivered,
        "parses": int(stats.get("engine.flag_parses", 0)),
        "sync_ops": int(stats.get("engine.sync_ops_dyn", 0)),
        "checks": int(stats.get("engine.interrupt_checks_dyn", 0)),
    }


def main():
    rows = []
    engines = [
        ("interpreter", "interp", None),
        ("MiniQEMU", "tcg", None),
        ("rules Base", "rules", make_rule_engine(OptLevel.BASE)),
        ("rules full", "rules", make_rule_engine(OptLevel.FULL)),
    ]
    for name, engine, factory in engines:
        result = run(engine, factory)
        rows.append([name, result["ticks"], result["delivered"],
                     result["checks"], result["sync_ops"],
                     result["parses"]])
    print(format_table(
        ["Engine", "Guest ticks", "IRQs delivered", "Interrupt checks",
         "Sync ops", "Lazy flag parses"], rows,
        title=f"Interrupt handling with a {TIMER_RELOAD}-instruction "
              "timer period"))
    print("\nThe optimized rule engine executes hundreds of interrupt "
          "checks per\ndelivery, but parses the packed FLAGS word only "
          "when an interrupt is\nactually taken — the Fig 7 behaviour.")


if __name__ == "__main__":
    main()
