#!/usr/bin/env python3
"""Inspect how one guest block translates under each engine.

Shows, side by side, the guest ARM code of a basic block and the host
x86 code produced by (a) the TCG-style baseline, (b) the rule-based
translator at Base, and (c) at full optimization — making the CPU-state
coordination (sync-save/sync-restore, the packed FLAGS slot, the
interrupt check) directly visible.

Run:  python examples/inspect_translation.py
"""

from repro.core import OptLevel, make_rule_engine
from repro.core.engine import RuleEngine
from repro.guest.asm import assemble
from repro.miniqemu.machine import Machine, TcgEngine

BLOCK_ADDR = 0x40000

#: A block with the paper's pain points: a flag producer, a dependent
#: conditional instruction, consecutive memory accesses, and a
#: conditional branch consuming the flags.
GUEST_BLOCK = """
    cmp r1, #10
    addge r2, r2, #1
    str r2, [r3]
    str r2, [r3, #4]
    ldr r4, [r3, #8]
    bne somewhere
somewhere:
    nop
"""


def show(title, code, max_lines=80):
    print(f"\n--- {title} ({len(code)} host instructions) ---")
    for index, insn in enumerate(code[:max_lines]):
        tag = f"[{insn.tag}]"
        print(f"  {index:3d}  {tag:<11s} {insn}")
    if len(code) > max_lines:
        print(f"  ... {len(code) - max_lines} more")


def main():
    machine = Machine(engine="tcg")
    machine.memory.load_program(assemble(GUEST_BLOCK, base=BLOCK_ADDR))

    print("guest block:")
    for line in GUEST_BLOCK.strip().splitlines():
        print("   " + line.strip())

    tcg_tb = TcgEngine(machine).translate(BLOCK_ADDR, 0)
    show("MiniQEMU (TCG two-step translation)", tcg_tb.code)

    for level in (OptLevel.BASE, OptLevel.FULL):
        engine = RuleEngine(machine, level=level)
        tb = engine.translate(BLOCK_ADDR, 0)
        show(f"rule-based, {level.name}", tb.code)
        meta = tb.meta
        print(f"  coordination: {meta['sync_saves']} saves, "
              f"{meta['sync_restores']} restores, "
              f"{meta['sync_insns']} sync instructions")

    print("\nNote how Base brackets every memory access and conditional "
          "with parsed\nsync sequences, while the optimized version keeps "
          "the guest CCR in the\nhost FLAGS register and uses one packed "
          "save (pushfd/pop/mov).")


if __name__ == "__main__":
    main()
